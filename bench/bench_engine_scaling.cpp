// Throughput of the sharded PredictionEngine on a synthetic many-stream
// trace, swept over shard counts. Every sweep point is checked for report
// equality against the sequential (1-shard) run, so this bench doubles as
// a large-scale equivalence check on top of engine_parallel_test.
//
//   $ ./bench_engine_scaling [--predictor <name>] [--events <n>]
//                            [--streams <n>] [--shards <n>]
//
// Defaults: 1M events over 100k per-receiver streams; sweep shards
// {1, 2, 4, 8, hw}. `--shards <n>` measures that single count instead.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "engine/engine.hpp"

namespace {

using mpipred::engine::Event;

/// Periodic traffic over `streams` receivers: stream s sees sender
/// (s + round) % 1024 and sizes cycling over five powers of two — signal
/// the predictors genuinely chew on, unlike white noise.
std::vector<Event> synthetic_trace(std::size_t events, std::size_t streams) {
  std::vector<Event> out;
  out.reserve(events);
  for (std::size_t i = 0; i < events; ++i) {
    const std::size_t stream = i % streams;
    const std::size_t round = i / streams;
    out.push_back({.source = static_cast<std::int32_t>((stream + round) % 1024),
                   .destination = static_cast<std::int32_t>(stream),
                   .tag = 0,
                   .bytes = std::int64_t{64} << (round % 5)});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpipred;
  auto arg = engine::parse_predictor_arg(argc, argv);
  if (arg.listed) {
    return 0;
  }
  if (!arg.error.empty()) {
    std::fprintf(stderr, "%s\n", arg.error.c_str());
    return 1;
  }
  const std::size_t events_n = bench::size_flag(arg.rest, "--events", 1'000'000);
  const std::size_t streams_n = bench::size_flag(arg.rest, "--streams", 100'000);
  const std::size_t fixed_shards = bench::shards_flag(arg.rest, 0);
  if (!arg.rest.empty()) {
    std::fprintf(stderr, "unexpected argument '%s'\n", arg.rest.front().c_str());
    return 1;
  }
  if (events_n == 0 || streams_n == 0) {
    std::fprintf(stderr, "--events and --streams must be at least 1\n");
    return 1;
  }

  const std::size_t hw = engine::effective_shard_count(0);
  std::vector<std::size_t> counts;
  if (fixed_shards != 0) {
    counts = {1, engine::effective_shard_count(fixed_shards)};
  } else {
    counts = {1, 2, 4, 8, hw};
  }
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());

  std::printf("engine scaling: %zu events, %zu streams, predictor %s, %zu hardware threads\n\n",
              events_n, streams_n, arg.name.c_str(), hw);
  const auto events = synthetic_trace(events_n, streams_n);

  std::printf("%8s %10s %12s %9s %10s\n", "shards", "seconds", "events/s", "speedup",
              "identical");
  engine::EngineReport baseline;
  double baseline_seconds = 0.0;
  bool all_identical = true;
  for (const std::size_t shards : counts) {
    engine::PredictionEngine eng(
        engine::EngineConfig{.predictor = arg.name, .shards = shards});
    // mpipred-lint: allow(wall-clock) -- this bench times the real feed path on the host
    const auto start = std::chrono::steady_clock::now();
    eng.observe_all(events);
    // mpipred-lint: allow(wall-clock) -- same measurement, closing timestamp
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    const auto report = eng.report();

    const double seconds = elapsed.count();
    if (shards == 1) {
      baseline = report;
      baseline_seconds = seconds;
    }
    const bool identical = report == baseline;
    all_identical = all_identical && identical;
    std::printf("%8zu %10.3f %12.0f %8.2fx %10s\n", shards, seconds,
                static_cast<double>(events_n) / seconds, baseline_seconds / seconds,
                identical ? "yes" : "NO");
  }

  std::printf("\n%zu streams, %.1f MiB predictor state\n", baseline.streams.size(),
              static_cast<double>(baseline.total_footprint_bytes) / (1024.0 * 1024.0));
  if (hw == 1) {
    std::printf("(single hardware thread: shard counts > 1 only prove equivalence here;\n"
                " speedups need a multi-core host)\n");
  }
  return all_identical ? 0 : 2;
}
