// Ablation — detector criterion variants on real traces. DESIGN.md calls
// out the one place this implementation deliberately deviates from the
// reference DPD formulation: the production detector confirms a lag from
// its *match run* with score hysteresis, while the reference checks
// d(m) == 0 over the full window. On clean logical streams the two are
// nearly identical; on physical streams the full-window criterion goes
// silent for a whole window after every random swap. This bench
// quantifies that difference, plus the contribution of the hysteresis
// fallback alone (mismatch_penalty high enough that scores never help).

#include <cstdio>
#include <memory>

#include "bench/bench_util.hpp"
#include "core/windowed_dpd.hpp"

namespace {

using namespace mpipred;

core::AccuracyReport eval_variant(const char* variant, std::span<const std::int64_t> stream) {
  if (std::string(variant) == "window") {
    core::WindowedDpdPredictor p;
    return core::evaluate_with(p, stream, 5);
  }
  core::StreamPredictorConfig cfg;
  if (std::string(variant) == "strict") {
    // Effectively disable the hysteresis fallback: one mismatch drains any
    // score, leaving only the strict run criterion.
    cfg.dpd.mismatch_penalty = 1u << 20;
  }
  core::StreamPredictor p(cfg);
  return core::evaluate_with(p, stream, 5);
}

}  // namespace

int main() {
  std::printf("Ablation — detector criterion on real traces (+1 / +5 %% accuracy)\n\n");
  std::printf("%-14s %-9s  %-13s %-13s %-13s\n", "config", "level", "production",
              "strict-run", "full-window");

  struct Case {
    const char* app;
    int procs;
  };
  for (const auto& [app, procs] : {Case{"bt", 9}, Case{"lu", 8}, Case{"sweep3d", 16},
                                   Case{"cg", 16}}) {
    auto run = bench::run_traced(app, procs);
    for (const auto level : {trace::Level::Logical, trace::Level::Physical}) {
      const int rep = trace::representative_rank(run.world->traces(), level);
      const auto streams = trace::extract_streams(run.world->traces(), rep, level);
      const auto prod = eval_variant("production", streams.senders);
      const auto strict = eval_variant("strict", streams.senders);
      const auto window = eval_variant("window", streams.senders);
      std::printf("%-14s %-9s  %5.1f /%5.1f  %5.1f /%5.1f  %5.1f /%5.1f\n",
                  (std::string(app) + "." + std::to_string(procs)).c_str(),
                  std::string(to_string(level)).c_str(), bench::pct(prod.at(1).accuracy()),
                  bench::pct(prod.at(5).accuracy()), bench::pct(strict.at(1).accuracy()),
                  bench::pct(strict.at(5).accuracy()), bench::pct(window.at(1).accuracy()),
                  bench::pct(window.at(5).accuracy()));
      std::fflush(stdout);
    }
  }
  std::printf("\n(expected: all three agree on logical streams; on physical streams the\n"
              " hysteretic production detector > strict runs > full-window d(m))\n");
  return 0;
}
