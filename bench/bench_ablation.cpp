// Ablation — detector criterion variants on real traces. DESIGN.md calls
// out the one place this implementation deliberately deviates from the
// reference DPD formulation: the production detector confirms a lag from
// its *match run* with score hysteresis, while the reference checks
// d(m) == 0 over the full window. On clean logical streams the two are
// nearly identical; on physical streams the full-window criterion goes
// silent for a whole window after every random swap. This bench
// quantifies that difference, plus the contribution of the hysteresis
// fallback alone (mismatch_penalty high enough that scores never help).
//
// Every variant is built through the predictor registry, so the swept
// column accepts any registered family:
//
//   $ ./bench/bench_ablation [--predictor <name>]      (default: dpd)
//   $ ./bench/bench_ablation --list-predictors

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.hpp"

namespace {

using namespace mpipred;

core::AccuracyReport eval_family(const std::string& name, const engine::PredictorOptions& options,
                                 std::span<const std::int64_t> stream) {
  const auto predictor = engine::make_predictor(name, options);
  return core::evaluate_with(*predictor, stream, 5);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string predictor = bench::predictor_flag(argc, argv);

  // Effectively disable the hysteresis fallback: one mismatch drains any
  // score, leaving only the strict run criterion.
  engine::PredictorOptions strict_options;
  strict_options.dpd.mismatch_penalty = 1u << 20;

  std::printf("Ablation — detector criterion on real traces (+1 / +5 %% accuracy)\n\n");
  std::printf("%-14s %-9s  %-13s %-13s %-13s\n", "config", "level", predictor.c_str(),
              "strict-run", "full-window");

  struct Case {
    const char* app;
    int procs;
  };
  for (const auto& [app, procs] : {Case{"bt", 9}, Case{"lu", 8}, Case{"sweep3d", 16},
                                   Case{"cg", 16}}) {
    auto run = bench::run_traced(app, procs);
    for (const auto level : {trace::Level::Logical, trace::Level::Physical}) {
      const int rep = trace::representative_rank(run.world->traces(), level);
      const auto streams = trace::extract_streams(run.world->traces(), rep, level);
      const auto swept = eval_family(predictor, {}, streams.senders);
      const auto strict = eval_family("dpd", strict_options, streams.senders);
      const auto window = eval_family("dpd-window", {}, streams.senders);
      std::printf("%-14s %-9s  %5.1f /%5.1f  %5.1f /%5.1f  %5.1f /%5.1f\n",
                  (std::string(app) + "." + std::to_string(procs)).c_str(),
                  std::string(to_string(level)).c_str(), bench::pct(swept.at(1).accuracy()),
                  bench::pct(swept.at(5).accuracy()), bench::pct(strict.at(1).accuracy()),
                  bench::pct(strict.at(5).accuracy()), bench::pct(window.at(1).accuracy()),
                  bench::pct(window.at(5).accuracy()));
      std::fflush(stdout);
    }
  }
  std::printf("\n(expected with the default dpd column: all three agree on logical streams;\n"
              " on physical streams hysteretic production > strict runs > full-window d(m))\n");
  return 0;
}
