// The first machine-diffable latency benchmark of the prediction service:
// per-event observe latency of the resident engine, measured end to end
// at the call boundary a consumer actually pays — one observe_all() per
// arriving message for the online path, batched feeds for replay, and
// multi-tenant sessions through a PredictionServer.
//
// Three dispatch modes are measured on identical event sequences:
//   inline      shards=1 — no dispatch at all (the floor)
//   spawn       one std::thread per non-empty shard per feed (the
//               pre-resident baseline this PR replaces)
//   persistent  resident workers woken per feed (the new default)
// with min_parallel_batch=1 so even single-event feeds take the dispatch
// path — the honest cost comparison the resident pool exists to win.
//
// Gates (exit 2): the three modes and every batch size must produce
// byte-identical reports, every tenant's session report must equal the
// single-tenant engine's, and the persistent p99 must beat spawn.
//
//   $ ./bench/bench_engine_latency [--predictor <name>] [--shards <n>]
//       [--events <n>] [--tenants <n>] [--out <file>]
//
// Writes BENCH_engine_latency.json (no timestamps — diffable modulo the
// measured nanosecond values themselves).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/json_writer.hpp"
#include "serve/server.hpp"

namespace {

using namespace mpipred;
// mpipred-lint: allow(wall-clock) -- benches measure real host latency, not simulated time
using Clock = std::chrono::steady_clock;

std::vector<engine::Event> synthetic_trace(std::size_t nevents, std::int32_t ndestinations) {
  std::vector<engine::Event> events;
  events.reserve(nevents);
  for (std::size_t i = 0; i < nevents; ++i) {
    engine::Event event;
    event.destination = static_cast<std::int32_t>(i) % ndestinations;
    event.source = (static_cast<std::int32_t>(i) / ndestinations) % 7;
    event.tag = 0;
    event.bytes = std::int64_t{64} << ((i / static_cast<std::size_t>(ndestinations)) % 4);
    events.push_back(event);
  }
  return events;
}

struct Percentiles {
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double mean_ns = 0.0;
};

Percentiles percentiles(std::vector<double>& samples) {
  Percentiles out;
  if (samples.empty()) {
    return out;
  }
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double q) {
    const auto rank = static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[rank];
  };
  out.p50_ns = at(0.50);
  out.p99_ns = at(0.99);
  double sum = 0.0;
  for (const double s : samples) {
    sum += s;
  }
  out.mean_ns = sum / static_cast<double>(samples.size());
  return out;
}

double elapsed_ns(Clock::time_point from, Clock::time_point to) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

/// Feeds `events` one observe_all() call per `batch` events (0 = one
/// call), recording the wall time of each call.
template <typename Target>
std::vector<double> timed_feed(Target& target, std::span<const engine::Event> events,
                               std::size_t batch) {
  const std::size_t step = batch == 0 ? events.size() : batch;
  std::vector<double> samples;
  samples.reserve(events.size() / step + 1);
  for (std::size_t off = 0; off < events.size(); off += step) {
    const auto slice = events.subspan(off, std::min(step, events.size() - off));
    const auto start = Clock::now();
    target.observe_all(slice);
    samples.push_back(elapsed_ns(start, Clock::now()));
  }
  return samples;
}

void write_percentiles(bench::JsonWriter& json, const char* name, const Percentiles& p,
                       std::size_t samples) {
  json.key(name).begin_object();
  json.key("p50_ns").value(p.p50_ns);
  json.key("p99_ns").value(p.p99_ns);
  json.key("mean_ns").value(p.mean_ns);
  json.key("samples").value(samples);
  json.end_object();
}

int fail_gate(const char* what) {
  std::fprintf(stderr, "GATE FAILED: %s\n", what);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  auto arg = engine::predictor_arg_or_exit(argc, argv, "dpd");
  const std::size_t shards = bench::shards_flag(arg.rest, 4);
  const std::size_t nevents = bench::size_flag(arg.rest, "--events", 20000);
  const std::size_t tenants = bench::size_flag(arg.rest, "--tenants", 4);
  std::string out_path = bench::string_flag(arg.rest, "--out");
  if (out_path.empty()) {
    out_path = "BENCH_engine_latency.json";
  }
  if (!arg.rest.empty()) {
    std::fprintf(stderr, "unexpected argument '%s'\n", arg.rest.front().c_str());
    return 1;
  }
  const std::size_t eff_shards = engine::effective_shard_count(shards);
  const auto events = synthetic_trace(nevents, 32);

  const auto engine_config = [&](engine::FeedMode mode, std::size_t nshards,
                                 std::size_t min_batch) {
    return engine::EngineConfig{.predictor = arg.name,
                                .shards = nshards,
                                .feed = mode,
                                .min_parallel_batch = min_batch};
  };

  std::printf("engine latency — predictor=%s shards=%zu events=%zu tenants=%zu\n\n", //
              arg.name.c_str(), eff_shards, nevents, tenants);

  // --- Single-event observe: dispatch cost head to head. -----------------
  struct Mode {
    const char* name;
    engine::EngineConfig cfg;
  };
  const Mode modes[] = {
      {"inline", engine_config(engine::FeedMode::persistent, 1, 0)},
      {"spawn", engine_config(engine::FeedMode::spawn, eff_shards, 1)},
      {"persistent", engine_config(engine::FeedMode::persistent, eff_shards, 1)},
  };
  Percentiles single[3];
  engine::EngineReport reports[3];
  for (int m = 0; m < 3; ++m) {
    engine::PredictionEngine eng(modes[m].cfg);
    auto samples = timed_feed(eng, events, 1);
    single[m] = percentiles(samples);
    reports[m] = eng.report();
    std::printf("single-event %-11s p50 %9.0f ns   p99 %9.0f ns   mean %9.0f ns\n",
                modes[m].name, single[m].p50_ns, single[m].p99_ns, single[m].mean_ns);
  }
  if (reports[1] != reports[0] || reports[2] != reports[0]) {
    return fail_gate("dispatch modes produced different reports");
  }
  const double p99_speedup = single[2].p99_ns > 0.0 ? single[1].p99_ns / single[2].p99_ns : 0.0;
  std::printf("\npersistent p99 speedup vs spawn: %.2fx\n\n", p99_speedup);

  // --- Batch sweep: per-event cost vs batch size (persistent mode). ------
  const std::size_t batch_sizes[] = {1, 64, 512, 4096, 32768, 0};
  struct BatchRow {
    std::size_t batch = 0;
    Percentiles per_feed;
    double mean_ns_per_event = 0.0;
    std::size_t feeds = 0;
  };
  std::vector<BatchRow> sweep;
  for (const std::size_t batch : batch_sizes) {
    engine::PredictionEngine eng(engine_config(engine::FeedMode::persistent, eff_shards, 1));
    auto samples = timed_feed(eng, events, batch);
    if (eng.report() != reports[0]) {
      return fail_gate("batch size changed the report");
    }
    BatchRow row;
    row.batch = batch;
    row.feeds = samples.size();
    row.per_feed = percentiles(samples);
    // Total time over total events — correct even when the last feed is a
    // partial batch or the batch size exceeds the event count.
    row.mean_ns_per_event =
        row.per_feed.mean_ns * static_cast<double>(row.feeds) / static_cast<double>(events.size());
    sweep.push_back(row);
    std::printf("batch %9s  feeds %6zu  p99/feed %12.0f ns   mean/event %8.1f ns\n",
                batch == 0 ? "unbounded" : std::to_string(batch).c_str(), row.feeds,
                row.per_feed.p99_ns, row.mean_ns_per_event);
  }

  // --- Multi-tenant: interleaved sessions through one server. ------------
  serve::PredictionServer server(
      {.engine = engine_config(engine::FeedMode::persistent, eff_shards, 1)});
  std::vector<std::shared_ptr<serve::Session>> sessions;
  for (std::size_t t = 0; t < tenants; ++t) {
    sessions.push_back(server.open_session());
  }
  std::vector<double> tenant_samples;
  constexpr std::size_t kTenantBatch = 512;
  const std::span<const engine::Event> all(events);
  for (std::size_t off = 0; off < all.size(); off += kTenantBatch) {
    const auto slice = all.subspan(off, std::min(kTenantBatch, all.size() - off));
    // Round-robin: every tenant feeds the same slice before the next
    // slice, so feeds of different namespaces genuinely interleave.
    for (const auto& session : sessions) {
      const auto start = Clock::now();
      session->observe_all(slice);
      tenant_samples.push_back(elapsed_ns(start, Clock::now()));
    }
  }
  const std::size_t tenant_feeds = tenant_samples.size();
  const Percentiles tenant = percentiles(tenant_samples);
  for (const auto& session : sessions) {
    if (session->report() != reports[0]) {
      return fail_gate("a tenant session's report differs from the engine's");
    }
  }
  std::printf("\nmulti-tenant (%zu sessions, %zu-event feeds): p50 %9.0f ns   p99 %9.0f ns\n",
              tenants, kTenantBatch, tenant.p50_ns, tenant.p99_ns);

  // --- Artifact. ---------------------------------------------------------
  bench::JsonWriter json;
  json.begin_object();
  json.key("bench").value("engine_latency");
  json.key("config").begin_object();
  json.key("predictor").value(arg.name);
  json.key("shards").value(eff_shards);
  json.key("events").value(nevents);
  json.key("tenants").value(tenants);
  json.end_object();
  json.key("single_event").begin_object();
  for (int m = 0; m < 3; ++m) {
    write_percentiles(json, modes[m].name, single[m], nevents);
  }
  json.key("p99_speedup_vs_spawn").value(p99_speedup);
  json.end_object();
  json.key("batch_sweep").begin_array();
  for (const BatchRow& row : sweep) {
    json.begin_object();
    json.key("batch_events").value(row.batch);
    json.key("feeds").value(row.feeds);
    json.key("p50_ns_per_feed").value(row.per_feed.p50_ns);
    json.key("p99_ns_per_feed").value(row.per_feed.p99_ns);
    json.key("mean_ns_per_event").value(row.mean_ns_per_event);
    json.end_object();
  }
  json.end_array();
  json.key("multi_tenant").begin_object();
  json.key("sessions").value(tenants);
  json.key("batch_events").value(kTenantBatch);
  write_percentiles(json, "per_feed", tenant, tenant_feeds);
  json.end_object();
  json.key("gates").begin_object();
  json.key("modes_report_identical").value(true);
  json.key("batch_sizes_report_identical").value(true);
  json.key("sessions_match_engine").value(true);
  json.key("persistent_p99_beats_spawn").value(p99_speedup > 1.0);
  json.end_object();
  json.end_object();

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "%s\n", json.str().c_str());
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (p99_speedup <= 1.0) {
    return fail_gate("persistent p99 did not beat the spawn baseline");
  }
  return 0;
}
