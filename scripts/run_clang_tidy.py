#!/usr/bin/env python3
"""clang-tidy driver over the exported compilation database.

Runs the repo's curated .clang-tidy check set (WarningsAsErrors: '*', so
any finding is fatal) across every src/ translation unit listed in
compile_commands.json, in parallel, and exits non-zero on findings.

The container/CI split: the local image may not ship clang-tidy (the
checks are clang-specific); pass --missing-ok to turn an absent tool into
a clean skip (the ctest registration does), while CI — which apt-installs
clang-tidy — runs without it, so a broken install fails loudly there.

Usage: run_clang_tidy.py [--build-dir BUILD] [--jobs N] [--missing-ok]
                         [--clang-tidy BIN] [files...]
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

TIDY_CANDIDATES = (
    "clang-tidy",
    "clang-tidy-20",
    "clang-tidy-19",
    "clang-tidy-18",
    "clang-tidy-17",
    "clang-tidy-16",
    "clang-tidy-15",
    "clang-tidy-14",
)


def find_tidy(explicit: str | None) -> str | None:
    if explicit:
        return explicit if shutil.which(explicit) else None
    for cand in TIDY_CANDIDATES:
        if shutil.which(cand):
            return cand
    return None


def database_files(build_dir: Path) -> list[Path]:
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        raise FileNotFoundError(db_path)
    with db_path.open(encoding="utf-8") as fh:
        entries = json.load(fh)
    src_prefix = (REPO_ROOT / "src").resolve()
    files = set()
    for entry in entries:
        f = Path(entry["file"])
        if not f.is_absolute():
            f = Path(entry["directory"]) / f
        f = f.resolve()
        if f.is_relative_to(src_prefix):
            files.add(f)
    return sorted(files)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="restrict to these files (default: every src/ TU)")
    parser.add_argument("--build-dir", default=str(REPO_ROOT / "build"))
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--clang-tidy", default=None, help="tidy binary to use")
    parser.add_argument("--missing-ok", action="store_true",
                        help="exit 0 when clang-tidy is not installed")
    args = parser.parse_args()

    tidy = find_tidy(args.clang_tidy)
    if tidy is None:
        msg = "clang-tidy not found on PATH"
        if args.missing_ok:
            print(f"SKIP: {msg} (CI runs this for real)")
            return 0
        print(f"ERROR: {msg}", file=sys.stderr)
        return 2

    build_dir = Path(args.build_dir)
    try:
        files = [Path(f).resolve() for f in args.files] or database_files(build_dir)
    except FileNotFoundError as err:
        print(f"ERROR: {err} missing — configure the build first "
              "(the export is on by default)", file=sys.stderr)
        return 2
    if not files:
        print("ERROR: no src/ translation units in the database", file=sys.stderr)
        return 2

    def run_one(tu: Path) -> tuple[Path, int, str]:
        proc = subprocess.run(
            [tidy, "-p", str(build_dir), "--quiet", str(tu)],
            capture_output=True, text=True, check=False)
        # tidy prints "N warnings generated" chatter on stderr; findings go
        # to stdout. Keep stderr only on hard failures.
        out = proc.stdout
        if proc.returncode != 0 and not out:
            out = proc.stderr
        return tu, proc.returncode, out

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for tu, rc, out in pool.map(run_one, files):
            rel = tu.relative_to(REPO_ROOT) if tu.is_relative_to(REPO_ROOT) else tu
            if rc != 0:
                failures += 1
                print(f"== {rel}")
                print(out)
            else:
                print(f"ok {rel}")
    if failures:
        print(f"clang-tidy: {failures}/{len(files)} translation unit(s) failed",
              file=sys.stderr)
        return 1
    print(f"clang-tidy: all {len(files)} translation units clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
