#!/usr/bin/env python3
"""Checks that every library translation unit is visible to the
static-analysis tooling: each src/**/*.cpp must have an entry in the build
tree's compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS is on by
default). A TU missing from the database silently escapes clang-tidy and
the thread-safety build, so this is a blocking test, not a warning.

Usage: check_compile_commands.py [--build-dir BUILD] [--source-dir SRC]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=str(REPO_ROOT / "build"))
    parser.add_argument("--source-dir", default=str(REPO_ROOT / "src"))
    args = parser.parse_args()

    db_path = Path(args.build_dir) / "compile_commands.json"
    if not db_path.is_file():
        print(f"missing {db_path}: configure with CMake >= 3.20 (the export "
              "is on by default in CMakeLists.txt)", file=sys.stderr)
        return 1

    with db_path.open(encoding="utf-8") as fh:
        entries = json.load(fh)
    indexed = set()
    for entry in entries:
        f = Path(entry["file"])
        if not f.is_absolute():
            f = Path(entry["directory"]) / f
        indexed.add(f.resolve())

    src_dir = Path(args.source_dir).resolve()
    missing = sorted(
        tu for tu in src_dir.rglob("*.cpp") if tu.resolve() not in indexed
    )
    if missing:
        for tu in missing:
            print(f"not in compile_commands.json: {tu}", file=sys.stderr)
        print(f"{len(missing)} translation unit(s) invisible to static "
              "analysis — did a glob or target drop them?", file=sys.stderr)
        return 1
    count = sum(1 for _ in src_dir.rglob("*.cpp"))
    print(f"compile_commands.json covers all {count} src/ translation units")
    return 0


if __name__ == "__main__":
    sys.exit(main())
