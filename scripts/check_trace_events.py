#!/usr/bin/env python3
"""Validator for the telemetry layer's JSON exports.

Default mode checks a Chrome trace-event export (the `--emit-trace-events`
output of predict_nas / replay_trace / bench_adaptive) against the subset
of the trace-event format the sink emits, so a malformed export fails CI
before anyone tries to load it in Perfetto:

- top level is an object with a `traceEvents` list,
- every event has a string `ph` in {M, X, i, C} plus integer `pid`/`tid`,
- non-metadata events carry a numeric, non-negative `ts`,
- X (complete) events carry a numeric, non-negative `dur`,
- i (instant) events carry a scope `s`,
- C (counter) events carry a numeric `args.value`,
- M (metadata) events are `process_name` rows with an `args.name` string,
- `args`, when present, is an object.

`--metrics` switches to the `--emit-metrics` schema instead: a `metrics`
list of rows sorted by (name, labels), each with a kind in
{counter, gauge, histogram} and integer values — counters/gauges a
`value` (gauges also a `peak`), histograms `count`/`sum`/`bounds`/
`buckets` with len(buckets) == len(bounds) + 1 and strictly increasing
bounds.

`--parse-only` just requires each file to parse as JSON (used on the
committed BENCH_*.json artifacts).

Usage: check_trace_events.py [--metrics | --parse-only] FILE [FILE...]
Exits 1 listing every violation as `file: message`.
"""

import argparse
import json
import sys

VALID_PH = {"M", "X", "i", "C"}
VALID_KINDS = {"counter", "gauge", "histogram"}


def check_event(i: int, ev: object, errors: list[str]) -> None:
    def err(msg: str) -> None:
        errors.append(f"traceEvents[{i}]: {msg}")

    if not isinstance(ev, dict):
        err("event is not an object")
        return
    ph = ev.get("ph")
    if ph not in VALID_PH:
        err(f"bad or missing ph {ph!r}")
        return
    for key in ("pid", "tid"):
        if not isinstance(ev.get(key), int):
            err(f"missing integer {key!r}")
    if not isinstance(ev.get("name"), str) or not ev["name"]:
        err("missing non-empty name")
    args = ev.get("args")
    if args is not None and not isinstance(args, dict):
        err("args is not an object")
        args = None
    if ph == "M":
        if ev.get("name") != "process_name":
            err(f"unexpected metadata row {ev.get('name')!r}")
        elif not isinstance((args or {}).get("name"), str):
            err("process_name row without an args.name string")
        return
    ts = ev.get("ts")
    if not isinstance(ts, (int, float)) or ts < 0:
        err(f"bad or missing ts {ts!r}")
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            err(f"complete event with bad dur {dur!r}")
    if ph == "i" and ev.get("s") not in {"t", "p", "g"}:
        err(f"instant event with bad scope {ev.get('s')!r}")
    if ph == "C" and not isinstance((args or {}).get("value"), (int, float)):
        err("counter event without a numeric args.value")


def check_trace(doc: object, errors: list[str]) -> None:
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        errors.append("top level is not an object with a traceEvents list")
        return
    events = doc["traceEvents"]
    if not events:
        errors.append("traceEvents is empty")
    for i, ev in enumerate(events):
        check_event(i, ev, errors)


def check_metrics(doc: object, errors: list[str]) -> None:
    if not isinstance(doc, dict) or not isinstance(doc.get("metrics"), list):
        errors.append("top level is not an object with a metrics list")
        return
    prev_key = None
    for i, row in enumerate(doc["metrics"]):
        def err(msg: str) -> None:
            errors.append(f"metrics[{i}]: {msg}")

        if not isinstance(row, dict):
            err("row is not an object")
            continue
        name = row.get("name")
        labels = row.get("labels", "")
        if not isinstance(name, str) or not name:
            err("missing non-empty name")
            continue
        if not isinstance(labels, str):
            err("labels is not a string")
            continue
        key = (name, labels)
        if prev_key is not None and key < prev_key:
            err(f"rows not sorted by (name, labels): {key} after {prev_key}")
        prev_key = key
        kind = row.get("kind")
        if kind not in VALID_KINDS:
            err(f"bad kind {kind!r}")
            continue
        if kind != "histogram" and not isinstance(row.get("value"), int):
            err("missing integer value")
        if kind == "gauge" and not isinstance(row.get("peak"), int):
            err("gauge row without an integer peak")
        if kind == "histogram":
            if not isinstance(row.get("count"), int):
                err("histogram row without an integer count")
            bounds = row.get("bounds")
            buckets = row.get("buckets")
            if not isinstance(bounds, list) or not isinstance(buckets, list):
                err("histogram row without bounds/buckets lists")
                continue
            if len(buckets) != len(bounds) + 1:
                err(f"{len(buckets)} buckets for {len(bounds)} bounds")
            if any(not isinstance(b, int) for b in bounds + buckets):
                err("non-integer bound or bucket")
            elif any(b >= a for b, a in zip(bounds, bounds[1:])):
                err("bounds not strictly increasing")
            if not isinstance(row.get("sum"), int):
                err("histogram row without an integer sum")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--metrics", action="store_true",
                      help="validate --emit-metrics output instead of trace events")
    mode.add_argument("--parse-only", action="store_true",
                      help="only require the files to parse as JSON")
    parser.add_argument("files", nargs="+", metavar="FILE")
    args = parser.parse_args()

    failed = False
    for path in args.files:
        errors: list[str] = []
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            errors.append(f"not valid JSON: {e}")
            doc = None
        if doc is not None and not args.parse_only:
            (check_metrics if args.metrics else check_trace)(doc, errors)
        if errors:
            failed = True
            for msg in errors[:50]:
                print(f"{path}: {msg}")
            if len(errors) > 50:
                print(f"{path}: ... and {len(errors) - 50} more")
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
