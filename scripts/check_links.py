#!/usr/bin/env python3
"""Offline markdown link checker for README.md and docs/.

Verifies, without touching the network, that every inline markdown link
- to a relative path resolves to an existing file or directory,
- to an anchor (`#section`, same-file or `file.md#section`) matches a
  heading in the target file (GitHub slug rules),
while external links (http/https/mailto) are only syntax-checked.

Usage: check_links.py FILE [FILE...]
Exits 1 listing every broken link as `file:line: message`.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[(?:[^\]]*)\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())  # drop code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)  # strip punctuation
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    slugs: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def iter_links(path: Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    for lineno, target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        resolved = path if not base else (path.parent / base).resolve()
        if base and not resolved.exists():
            errors.append(f"{path}:{lineno}: broken link '{target}' (no such file)")
            continue
        if anchor and resolved.suffix == ".md":
            if anchor not in heading_slugs(resolved):
                errors.append(
                    f"{path}:{lineno}: broken anchor '{target}' "
                    f"(no heading '#{anchor}' in {resolved.name})"
                )
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors: list[str] = []
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            errors.append(f"{name}: file not found")
            continue
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} broken link(s)", file=sys.stderr)
        return 1
    print(f"all links ok across {len(argv) - 1} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
