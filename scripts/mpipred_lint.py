#!/usr/bin/env python3
"""mpipred determinism lint.

Repo-specific static checks that enforce invariants the compiler cannot:

  wall-clock           nothing in the simulated world reads wall-clock time
                       or ambient entropy; src/sim/rng.hpp is the only
                       sanctioned randomness source.
  unordered-iteration  iteration order of unordered containers must never
                       feed a report/snapshot (reports are byte-identical
                       across shard counts; hash order is not).
  raw-assert           library code uses MPIPRED_REQUIRE (always-on, typed
                       UsageError) instead of <cassert> assert.
  nodiscard            Future, Error, and report/snapshot-returning APIs
                       carry [[nodiscard]]; dropping them is always a bug.
  include-hygiene      headers under src/mpi/ stay on the split config
                       headers (engine/config.hpp, adaptive/config.hpp)
                       instead of dragging full engine/adaptive headers
                       into every MPI translation unit.
  pragma-once          every header opens with #pragma once.

Suppression: append on the offending line (or the line above)

    // mpipred-lint: allow(rule[,rule]) -- reason

The reason text is mandatory; a bare allow() is itself an error.

Usage:
    mpipred_lint.py                     lint the default roots (src tests
                                        bench examples), exit 1 on findings
    mpipred_lint.py path...             lint specific files/directories
    mpipred_lint.py --self-test DIR     run the fixture corpus in DIR
    mpipred_lint.py --list-rules        print rule ids and one-liners
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_ROOTS = ("src", "tests", "bench", "examples")
CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}

ALLOW_RE = re.compile(
    r"mpipred-lint:\s*allow\(([^)]*)\)\s*(?:—|--|-|:)?\s*(\S.*)?$"
)


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line: str) -> str:
    """Masks string/char literals and trailing // comments so rule regexes
    never fire on prose. Keeps the column positions of what remains."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        ch = line[i]
        if in_str:
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == in_str:
                in_str = None
            out.append(" ")
            i += 1
            continue
        if ch in "\"'":
            in_str = ch
            out.append(" ")
            i += 1
            continue
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            break  # trailing comment: rules never look inside it
        out.append(ch)
        i += 1
    return "".join(out)


# --------------------------------------------------------------------- rules

WALL_CLOCK_PATTERNS = [
    (re.compile(r"std::chrono::system_clock"), "std::chrono::system_clock"),
    (re.compile(r"std::chrono::steady_clock"), "std::chrono::steady_clock"),
    (
        re.compile(r"std::chrono::high_resolution_clock"),
        "std::chrono::high_resolution_clock",
    ),
    (re.compile(r"std::random_device|(?<![\w:.>])random_device\s*\("), "std::random_device"),
    (re.compile(r"std::s?rand\s*\(|(?<![\w:.>])s?rand\s*\("), "rand()/srand()"),
    (
        re.compile(r"(?<![\w:.>])time\s*\(\s*(?:nullptr|NULL|0|&\w+)?\s*\)"),
        "time()",
    ),
    (re.compile(r"(?<![\w:.>])clock\s*\(\s*\)"), "clock()"),
]

# The one sanctioned entropy/clock surface, relative to the repo root.
WALL_CLOCK_EXEMPT = {"src/sim/rng.hpp"}

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s+(\w+)\s*[;{=(\[]"
)
RANGE_FOR_RE = re.compile(r"for\s*\([^;)]*:\s*(?:\w+(?:\.|->))*(\w+)\s*\)")
BEGIN_CALL_RE = re.compile(r"(?<![\w.])(\w+)\s*\.\s*c?begin\s*\(\)")

ASSERT_RE = re.compile(r"(?<![\w_])assert\s*\(")
RAW_ASSERT_EXEMPT = {"src/common/assert.hpp"}

NODISCARD_TYPES = (
    "EngineReport",
    "MetricsSnapshot",
    "ServerStats",
    "ProgressStats",
    "StreamSnapshot",
    "RankRemapReport",
)
NODISCARD_FN_RE = re.compile(
    r"^\s*(?:virtual\s+)?(?:static\s+)?(?:engine::|telemetry::|serve::|ingest::|mpi::detail::)?("
    + "|".join(NODISCARD_TYPES)
    + r")\s+(\w+)\s*\("
)
NODISCARD_CLASS_RE = re.compile(r"^\s*class\s+(Future|Error)\s*[:{]")

MPI_HEADER_RE = re.compile(r"^src/mpi/.*\.hpp$")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
MPI_ALLOWED_PREFIXES = ("mpi/", "common/", "telemetry/", "sim/", "trace/")
MPI_ALLOWED_EXACT = {"engine/config.hpp", "adaptive/config.hpp"}


def sibling_header_decls(path: Path) -> set[str]:
    """Names of unordered containers declared in the .hpp next to a .cpp, so
    member usage in the implementation file is caught too."""
    if path.suffix != ".cpp":
        return set()
    header = path.with_suffix(".hpp")
    if not header.is_file():
        return set()
    names = set()
    for raw in header.read_text(encoding="utf-8", errors="replace").splitlines():
        code = strip_comments_and_strings(raw)
        for m in UNORDERED_DECL_RE.finditer(code):
            names.add(m.group(1))
    return names


def lint_file(path: Path, rel: str, lines: list[str]) -> list[Finding]:
    findings: list[Finding] = []
    allows: dict[int, set[str]] = {}  # line number -> allowed rule ids

    # Pass 1: collect suppressions (and flag reason-less ones).
    for idx, raw in enumerate(lines, start=1):
        m = ALLOW_RE.search(raw)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        reason = (m.group(2) or "").strip()
        if not rules or not reason:
            findings.append(
                Finding(rel, idx, "lint-usage",
                        "allow() needs rule ids and a reason: "
                        "// mpipred-lint: allow(rule) -- why this is safe")
            )
            continue
        # A suppression covers its own line and the line below it.
        allows.setdefault(idx, set()).update(rules)
        allows.setdefault(idx + 1, set()).update(rules)

    def emit(lineno: int, rule: str, message: str) -> None:
        if rule in allows.get(lineno, ()):
            return
        findings.append(Finding(rel, lineno, rule, message))

    unordered_names = sibling_header_decls(path)
    in_block_comment = False
    pragma_seen = False
    first_code_line = None

    for idx, raw in enumerate(lines, start=1):
        line = raw
        # Minimal block-comment tracking: rules skip fully-commented lines.
        if in_block_comment:
            if "*/" in line:
                line = line.split("*/", 1)[1]
                in_block_comment = False
            else:
                continue
        if "/*" in line and "*/" not in line.split("/*", 1)[1]:
            line = line.split("/*", 1)[0]
            in_block_comment = True
        code = strip_comments_and_strings(line)
        stripped = code.strip()

        if stripped and first_code_line is None and not stripped.startswith("//"):
            first_code_line = idx
        if re.match(r"\s*#\s*pragma\s+once", code):
            pragma_seen = True

        # wall-clock ------------------------------------------------------
        if rel not in WALL_CLOCK_EXEMPT:
            for pat, what in WALL_CLOCK_PATTERNS:
                if pat.search(code):
                    emit(idx, "wall-clock",
                         f"{what} is banned: the simulated world must be "
                         "deterministic; use sim/rng.hpp or simulated time")
                    break

        # unordered-iteration --------------------------------------------
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group(1))
        if unordered_names:
            hit = None
            m = RANGE_FOR_RE.search(code)
            if m and m.group(1) in unordered_names:
                hit = m.group(1)
            if hit is None:
                m = BEGIN_CALL_RE.search(code)
                if m and m.group(1) in unordered_names:
                    hit = m.group(1)
            if hit is not None:
                emit(idx, "unordered-iteration",
                     f"iterating '{hit}' (unordered container) — hash order "
                     "must never reach a report/snapshot; sort first or use "
                     "an ordered container")

        # raw-assert ------------------------------------------------------
        if rel.startswith("src/") and rel not in RAW_ASSERT_EXEMPT:
            m = ASSERT_RE.search(code)
            if m and "static_assert" not in code[max(0, m.start() - 7):m.end()]:
                emit(idx, "raw-assert",
                     "use MPIPRED_REQUIRE (always-on, throws UsageError) "
                     "instead of assert()")

        # nodiscard -------------------------------------------------------
        if rel.startswith("src/") and path.suffix in {".hpp", ".h"}:
            prev = strip_comments_and_strings(lines[idx - 2]) if idx >= 2 else ""
            m = NODISCARD_FN_RE.match(code)
            if m and "[[nodiscard]]" not in code and "[[nodiscard]]" not in prev:
                emit(idx, "nodiscard",
                     f"function returning {m.group(1)} must be [[nodiscard]] "
                     "(reports/snapshots are never side-effecting)")
            mc = NODISCARD_CLASS_RE.match(code)
            if mc:
                emit(idx, "nodiscard",
                     f"class {mc.group(1)} must be declared "
                     f"'class [[nodiscard]] {mc.group(1)}'")

        # include-hygiene -------------------------------------------------
        # Matched against the unmasked line: the include path is a string
        # literal, which strip_comments_and_strings blanks out.
        if MPI_HEADER_RE.match(rel):
            m = INCLUDE_RE.match(line)
            if m:
                inc = m.group(1)
                ok = inc in MPI_ALLOWED_EXACT or inc.startswith(MPI_ALLOWED_PREFIXES)
                if not ok:
                    emit(idx, "include-hygiene",
                         f'"{inc}" breaks the config-header split: mpi/ '
                         "headers may include engine/config.hpp and "
                         "adaptive/config.hpp only (forward-declare the rest)")

    # pragma-once ---------------------------------------------------------
    if path.suffix in {".hpp", ".h"} and not pragma_seen:
        findings.append(
            Finding(rel, first_code_line or 1, "pragma-once",
                    "header is missing #pragma once")
        )

    return findings


# ------------------------------------------------------------------ drivers

def collect_files(paths: list[Path]) -> list[Path]:
    files = []
    for p in paths:
        if p.is_file():
            if p.suffix in CXX_SUFFIXES:
                files.append(p)
        elif p.is_dir():
            for f in sorted(p.rglob("*")):
                if f.suffix in CXX_SUFFIXES and "tests/lint" not in f.as_posix():
                    files.append(f)
    return files


def rel_of(path: Path) -> str:
    try:
        return path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(paths: list[Path]) -> list[Finding]:
    findings = []
    for f in collect_files(paths):
        lines = f.read_text(encoding="utf-8", errors="replace").splitlines()
        findings.extend(lint_file(f, rel_of(f), lines))
    return findings


FIXTURE_PATH_RE = re.compile(r"//\s*lint-fixture-path:\s*(\S+)")
FIXTURE_EXPECT_RE = re.compile(r"//\s*lint-expect:\s*([\w-]+)")


def self_test(fixture_dir: Path) -> int:
    """Every fixture declares its logical path (lint-fixture-path) and the
    rules it must trip (lint-expect, zero or more). The harness fails when
    the produced rule set differs from the declared one."""
    failures = 0
    fixtures = sorted(p for p in fixture_dir.rglob("*") if p.suffix in CXX_SUFFIXES)
    if not fixtures:
        print(f"mpipred_lint --self-test: no fixtures under {fixture_dir}", file=sys.stderr)
        return 1
    for fixture in fixtures:
        text = fixture.read_text(encoding="utf-8", errors="replace")
        lines = text.splitlines()
        m = FIXTURE_PATH_RE.search(text)
        logical = m.group(1) if m else f"src/{fixture.name}"
        expected = sorted(set(FIXTURE_EXPECT_RE.findall(text)))
        # Directive lines are part of the fixture prose; strip them so a
        # lint-expect mention never interferes with a rule regex.
        body = [
            ln for ln in lines
            if not FIXTURE_PATH_RE.search(ln) and not FIXTURE_EXPECT_RE.search(ln)
        ]
        got = sorted({f.rule for f in lint_file(fixture, logical, body)})
        if got != expected:
            failures += 1
            print(f"FAIL {fixture.name} (as {logical}):", file=sys.stderr)
            print(f"  expected rules: {expected or ['<none>']}", file=sys.stderr)
            print(f"  got rules:      {got or ['<none>']}", file=sys.stderr)
            for f2 in lint_file(fixture, logical, body):
                print(f"    {f2}", file=sys.stderr)
        else:
            print(f"ok   {fixture.name}: {expected or ['clean']}")
    if failures:
        print(f"mpipred_lint --self-test: {failures} fixture(s) failed", file=sys.stderr)
        return 1
    print(f"mpipred_lint --self-test: {len(fixtures)} fixtures ok")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument("--self-test", metavar="DIR",
                        help="run the fixture corpus in DIR and exit")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rid, doc in [
            ("wall-clock", "no wall-clock/entropy outside src/sim/rng.hpp"),
            ("unordered-iteration", "hash order must not feed reports"),
            ("raw-assert", "MPIPRED_REQUIRE instead of assert() in src/"),
            ("nodiscard", "[[nodiscard]] on Future/Error and report APIs"),
            ("include-hygiene", "mpi/ headers stay on split config headers"),
            ("pragma-once", "headers open with #pragma once"),
        ]:
            print(f"{rid:20} {doc}")
        return 0

    if args.self_test:
        return self_test(Path(args.self_test))

    roots = [Path(p) for p in args.paths] if args.paths else [
        REPO_ROOT / r for r in DEFAULT_ROOTS
    ]
    findings = lint_paths(roots)
    for f in findings:
        print(f)
    if findings:
        print(f"mpipred_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
