// End-to-end pipeline on a real workload: run NAS CG on the simulated
// machine, pull the message streams of one process at both instrumentation
// levels, and evaluate the paper's +1..+5 prediction accuracy.
//
//   $ ./examples/predict_nas [app] [procs]     (default: cg 8)

#include <cstdio>
#include <string>

#include "apps/app.hpp"
#include "apps/registry.hpp"
#include "core/evaluate.hpp"
#include "mpi/world.hpp"
#include "trace/stats.hpp"
#include "trace/stream.hpp"

int main(int argc, char** argv) {
  using namespace mpipred;
  const std::string app = argc > 1 ? argv[1] : "cg";
  const int procs = argc > 2 ? std::atoi(argv[2]) : 8;

  const auto& info = apps::find_app(app);
  if (!info.supports(procs)) {
    std::printf("%s does not support %d processes\n", app.c_str(), procs);
    return 1;
  }

  std::printf("running %s with %d simulated processes (Class A)...\n", app.c_str(), procs);
  mpi::World world(procs, apps::paper_world_config(/*seed=*/42));
  const auto outcome = info.run(world, apps::AppConfig{.problem_class = apps::ProblemClass::A});
  std::printf("  verified: %s, metric: %g\n", outcome.verified ? "yes" : "NO", outcome.metric);

  const int rank = trace::representative_rank(world.traces(), trace::Level::Logical);
  std::printf("  representative process: %d\n\n", rank);

  for (const auto level : {trace::Level::Logical, trace::Level::Physical}) {
    const auto streams = trace::extract_streams(world.traces(), rank, level);
    const auto eval = core::evaluate_streams(streams, {});
    std::printf("%s level (%zu messages):\n", std::string(to_string(level)).c_str(),
                streams.length());
    std::printf("  senders:");
    for (std::size_t h = 1; h <= 5; ++h) {
      std::printf("  +%zu: %5.1f%%", h, 100.0 * eval.senders.at(h).accuracy());
    }
    std::printf("\n  sizes:  ");
    for (std::size_t h = 1; h <= 5; ++h) {
      std::printf("  +%zu: %5.1f%%", h, 100.0 * eval.sizes.at(h).accuracy());
    }
    std::printf("\n");
  }
  std::printf("\n(the logical level is a pure function of the program; the physical level\n"
              " adds the simulated machine's random effects — compare the two blocks)\n");
  return 0;
}
