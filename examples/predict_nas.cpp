// End-to-end pipeline on a real workload: run NAS CG on the simulated
// machine, demultiplex the resulting traces through the prediction engine,
// and evaluate the paper's +1..+5 prediction accuracy for one process plus
// the aggregate over every process's stream.
//
//   $ ./examples/predict_nas [app] [procs] [--predictor <name>] [--shards <n>]
//     (default: cg 8 --predictor dpd --shards 0 = one per hardware thread)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "apps/registry.hpp"
#include "bench/bench_util.hpp"
#include "engine/engine.hpp"
#include "mpi/world.hpp"
#include "trace/stats.hpp"

namespace {

void print_report_block(const char* label, const mpipred::core::AccuracyReport& report) {
  std::printf("  %-8s", label);
  for (std::size_t h = 1; h <= report.max_horizon(); ++h) {
    std::printf("  +%zu: %5.1f%%", h, 100.0 * report.at(h).accuracy());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpipred;
  auto predictor_arg = engine::predictor_arg_or_exit(argc, argv);
  const std::string& predictor = predictor_arg.name;
  const std::size_t shards = bench::shards_flag(predictor_arg.rest);

  std::string app = "cg";
  int procs = 8;
  if (predictor_arg.rest.size() > 2) {
    std::fprintf(stderr, "unexpected argument '%s'\n", predictor_arg.rest[2].c_str());
    return 1;
  }
  if (!predictor_arg.rest.empty()) {
    app = predictor_arg.rest[0];
  }
  if (predictor_arg.rest.size() > 1) {
    procs = std::atoi(predictor_arg.rest[1].c_str());
  }

  const auto& info = apps::find_app(app);
  if (!info.supports(procs)) {
    std::printf("%s does not support %d processes\n", app.c_str(), procs);
    return 1;
  }

  std::printf("running %s with %d simulated processes (Class A), predictor %s...\n", app.c_str(),
              procs, predictor.c_str());
  mpi::World world(procs, apps::paper_world_config(/*seed=*/42));
  const auto outcome = info.run(world, apps::AppConfig{.problem_class = apps::ProblemClass::A});
  std::printf("  verified: %s, metric: %g\n", outcome.verified ? "yes" : "NO", outcome.metric);

  const int rank = trace::representative_rank(world.traces(), trace::Level::Logical);
  std::printf("  representative process: %d\n\n", rank);

  for (const auto level : {trace::Level::Logical, trace::Level::Physical}) {
    const auto report = engine::run_over_trace(
        world.traces(), level, engine::EngineConfig{.predictor = predictor, .shards = shards});
    std::printf(
        "%s level (%lld messages over %zu streams on %zu engine shards, state %.1f KiB):\n",
        std::string(to_string(level)).c_str(), static_cast<long long>(report.events),
        report.streams.size(), engine::effective_shard_count(shards),
        static_cast<double>(report.total_footprint_bytes) / 1024.0);
    for (const auto& stream : report.streams) {
      if (stream.key.destination != rank) {
        continue;
      }
      std::printf(" process %d (%lld messages):\n", rank, static_cast<long long>(stream.events));
      print_report_block("senders:", stream.senders);
      print_report_block("sizes:", stream.sizes);
    }
    std::printf(" aggregate over all %d processes:\n", procs);
    print_report_block("senders:", report.aggregate_senders);
    print_report_block("sizes:", report.aggregate_sizes);
  }
  std::printf("\n(the logical level is a pure function of the program; the physical level\n"
              " adds the simulated machine's random effects — compare the two blocks)\n");
  return 0;
}
