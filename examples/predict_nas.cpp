// End-to-end pipeline on a real workload: run NAS CG on the simulated
// machine, demultiplex the resulting traces through the prediction engine,
// and evaluate the paper's +1..+5 prediction accuracy for one process plus
// the aggregate over every process's stream.
//
// The same pipeline also runs on externally captured traces: `--trace`
// replays a CSV trace file (either dialect, see docs/TRACE_FORMAT.md)
// through the resident prediction service — one PredictionServer session
// per level, the file parsed in pulled batches of `--batch-events` that
// overlap the shard drain, optionally sliced to a `--window` and folded
// onto a smaller rank space with `--remap-ranks` — and `--export-trace`
// writes the simulated run's trace out for later replay. Both modes
// enforce the gates — every session report must be byte-identical to the
// single-tenant engine wrapper's over the same events, a write_csv export
// re-ingested must produce byte-identical engine reports across shard
// counts {1,2,4}, and the streamed path must match the materialized one
// across batch sizes {64,4096,unbounded} — and exit 2 on any mismatch.
//
// `--emit-metrics <file>` writes the run's final metrics snapshot as JSON
// (both modes); `--emit-trace-events <file>` additionally records the
// simulated run as Chrome trace-event JSON — one track per rank, spans in
// simulated nanoseconds, loadable in Perfetto (simulated mode only: a
// replayed file has no simulated clock). Either flag arms a telemetry gate
// that re-runs the identically seeded world with no telemetry attached and
// exits 2 unless the outcome, final simulated time, and every endpoint
// counter are identical — telemetry observes, it never steers.
//
//   $ ./examples/predict_nas [app] [procs] [--predictor <name>] [--shards <n>]
//                            [--export-trace <path>] [--trace <file>]
//                            [--batch-events <n>] [--window <t0>:<t1>]
//                            [--remap-ranks <spec>] [--emit-metrics <file>]
//                            [--emit-trace-events <file>]
//     (default: cg 8 --predictor dpd --shards 0 = one per hardware thread)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "apps/registry.hpp"
#include "bench/bench_util.hpp"
#include "engine/engine.hpp"
#include "ingest/source.hpp"
#include "ingest/streaming.hpp"
#include "ingest/transform.hpp"
#include "ingest/verify.hpp"
#include "mpi/world.hpp"
#include "serve/server.hpp"
#include "trace/csv.hpp"
#include "trace/stats.hpp"

namespace {

using namespace mpipred;

void print_report_block(const char* label, const core::AccuracyReport& report) {
  std::printf("  %-8s", label);
  for (std::size_t h = 1; h <= report.max_horizon(); ++h) {
    std::printf("  +%zu: %5.1f%%", h, 100.0 * report.at(h).accuracy());
  }
  std::printf("\n");
}

/// One level's block, shared by the simulator and replay paths so the two
/// outputs stay diffable line for line.
void print_level_report(trace::Level level, const engine::EngineReport& report, int rep_rank,
                        int nprocs, std::size_t shards) {
  std::printf("%s level (%lld messages over %zu streams on %zu engine shards, state %.1f KiB):\n",
              std::string(to_string(level)).c_str(), static_cast<long long>(report.events),
              report.streams.size(), engine::effective_shard_count(shards),
              static_cast<double>(report.total_footprint_bytes) / 1024.0);
  for (const auto& stream : report.streams) {
    if (stream.key.destination != rep_rank) {
      continue;
    }
    std::printf(" process %d (%lld messages):\n", rep_rank,
                static_cast<long long>(stream.events));
    print_report_block("senders:", stream.senders);
    print_report_block("sizes:", stream.sizes);
  }
  std::printf(" aggregate over all %d processes:\n", nprocs);
  print_report_block("senders:", report.aggregate_senders);
  print_report_block("sizes:", report.aggregate_sizes);
}

/// The stream a remapped replay reports on: the busiest destination (most
/// events, smallest rank on ties — deterministic because report streams
/// are key-sorted). The raw store's representative rank is meaningless
/// after renumbering.
int busiest_destination(const engine::EngineReport& report) {
  int best = -1;
  std::int64_t best_events = -1;
  for (const auto& stream : report.streams) {
    if (stream.key.destination == engine::kAnyKey) {
      continue;
    }
    if (stream.events > best_events) {
      best_events = stream.events;
      best = stream.key.destination;
    }
  }
  return best;
}

int replay_trace(const std::string& path, const engine::EngineConfig& cfg,
                 const bench::TraceFlags& flags, const bench::TelemetryFlags& telem_flags) {
  const auto source = bench::open_trace_or_exit(path);
  std::printf("replaying %s (format %s, %d ranks), predictor %s...\n", path.c_str(),
              std::string(source->format()).c_str(), source->nranks(), cfg.predictor.c_str());
  const trace::TraceStore* store = source->store();

  // The server's sessions report into this registry when `--emit-metrics`
  // is given; the wrapper/gate engines below stay metrics-free, so the
  // wrapper-vs-session comparison doubles as the telemetry on/off gate.
  telemetry::Telemetry telem;
  engine::EngineConfig server_cfg = cfg;
  if (telem_flags.any()) {
    server_cfg.metrics = &telem.metrics();
  }

  // The streamed default path through the resident service: one
  // PredictionServer, one isolated session per level, each fed by the
  // incremental reader in pulled `--batch-events` batches through the
  // transform chain; nothing below depends on the batch size or on the
  // session-vs-engine surface (the gates prove both).
  struct LevelRun {
    trace::Level level{};
    ingest::StreamedRun run;
    std::string window_summary;
    std::string remap_summary;
    int nranks = 0;
  };
  serve::PredictionServer server({.engine = server_cfg});
  std::vector<LevelRun> runs;
  try {
    for (const trace::Level level : source->levels()) {
      auto chain =
          ingest::apply_transforms(ingest::open_event_stream(path, level), flags.transforms);
      LevelRun lr;
      lr.level = level;
      const auto session = server.open_session();
      lr.run = ingest::run_into(*chain.stream, *session, flags.batch_events);

      // Wrapper-vs-session gate: the single-tenant engine over a second
      // pass of the stream must reproduce the session's report exactly.
      auto wrapper_chain =
          ingest::apply_transforms(ingest::open_event_stream(path, level), flags.transforms);
      const ingest::StreamedRun wrapper =
          ingest::StreamingReplay{.engine = cfg, .batch_events = flags.batch_events}.run(
              *wrapper_chain.stream);
      if (wrapper.report != lr.run.report) {
        std::fprintf(stderr, "serve gate FAILED: session report differs from the engine "
                             "wrapper's at the %s level\n",
                     std::string(to_string(level)).c_str());
        return 2;
      }
      lr.nranks = source->nranks();
      if (chain.window != nullptr) {
        lr.window_summary = chain.window->summary();
      }
      if (chain.remap != nullptr) {
        lr.remap_summary = chain.remap->config().to_string() + ": " +
                           chain.remap->report().summary();
        lr.nranks = chain.remap->report().nranks();
      }
      runs.push_back(std::move(lr));
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  const int rep = !flags.transforms.active()
                      ? (store == nullptr
                             ? -1
                             : trace::representative_rank(*store, source->levels().front()))
                      : busiest_destination(runs.front().run.report);
  std::printf("  representative process: %d\n\n", rep);

  for (const LevelRun& lr : runs) {
    print_level_report(lr.level, lr.run.report, rep, lr.nranks, cfg.shards);
    if (!lr.window_summary.empty()) {
      std::printf("  %s\n", lr.window_summary.c_str());
    }
    if (!lr.remap_summary.empty()) {
      std::printf("  remap %s\n", lr.remap_summary.c_str());
    }
  }

  const auto sweep = bench::gate_shard_sweep(cfg.shards);
  const auto streamed =
      ingest::verify_streamed_source(path, *source, flags.transforms, cfg, sweep);
  if (!streamed.ok) {
    std::fprintf(stderr, "streamed-ingest gate FAILED: %s\n", streamed.detail.c_str());
    return 2;
  }
  if (store != nullptr) {
    const auto gate = ingest::verify_csv_round_trip(*store, cfg, sweep);
    if (!gate.ok) {
      std::fprintf(stderr, "round-trip gate FAILED: %s\n", gate.detail.c_str());
      return 2;
    }
    std::printf("\nround-trip gate: ok (byte-identical engine reports across shards {1,2,4} "
                "and batch sizes {64,4096,unbounded})\n");
  }
  if (telem_flags.any()) {
    bench::write_telemetry_or_exit(telem_flags, telem);
    std::printf("\ntelemetry: metrics snapshot -> %s (session reports matched the metrics-free "
                "engine wrapper's byte for byte)\n",
                telem_flags.metrics_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto predictor_arg = engine::predictor_arg_or_exit(argc, argv);
  const std::string& predictor = predictor_arg.name;
  const std::size_t shards = bench::shards_flag(predictor_arg.rest);
  const bench::TraceFlags trace_flags = bench::trace_flags_or_exit(predictor_arg.rest);
  const std::string export_path = bench::string_flag(predictor_arg.rest, "--export-trace");
  const bench::TelemetryFlags telem_flags = bench::telemetry_flags(predictor_arg.rest);
  const engine::EngineConfig cfg{.predictor = predictor, .shards = shards};

  if (!trace_flags.path.empty()) {
    if (!predictor_arg.rest.empty()) {
      std::fprintf(stderr, "unexpected argument '%s' (positionals do not combine with --trace)\n",
                   predictor_arg.rest.front().c_str());
      return 1;
    }
    if (!export_path.empty()) {
      std::fprintf(stderr, "--export-trace requires a simulated run; it does not combine with "
                           "--trace\n");
      return 1;
    }
    if (!telem_flags.trace_path.empty()) {
      std::fprintf(stderr, "--emit-trace-events requires a simulated run (a replayed file has "
                           "no simulated clock); it does not combine with --trace\n");
      return 1;
    }
    return replay_trace(trace_flags.path, cfg, trace_flags, telem_flags);
  }

  std::string app = "cg";
  int procs = 8;
  if (predictor_arg.rest.size() > 2) {
    std::fprintf(stderr, "unexpected argument '%s'\n", predictor_arg.rest[2].c_str());
    return 1;
  }
  if (!predictor_arg.rest.empty()) {
    app = predictor_arg.rest[0];
  }
  if (predictor_arg.rest.size() > 1) {
    procs = std::atoi(predictor_arg.rest[1].c_str());
  }

  const auto& info = apps::find_app(app);
  if (!info.supports(procs)) {
    std::printf("%s does not support %d processes\n", app.c_str(), procs);
    return 1;
  }

  std::printf("running %s with %d simulated processes (Class A), predictor %s...\n", app.c_str(),
              procs, predictor.c_str());
  telemetry::Telemetry telem;
  if (!telem_flags.trace_path.empty()) {
    telem.enable_tracing();  // before the world: endpoints cache the tracer
  }
  mpi::WorldConfig world_cfg = apps::paper_world_config(/*seed=*/42);
  if (telem_flags.any()) {
    world_cfg.telemetry = &telem;
  }
  mpi::World world(procs, world_cfg);
  const auto outcome = info.run(world, apps::AppConfig{.problem_class = apps::ProblemClass::A});
  std::printf("  verified: %s, metric: %g\n", outcome.verified ? "yes" : "NO", outcome.metric);

  const int rank = trace::representative_rank(world.traces(), trace::Level::Logical);
  std::printf("  representative process: %d\n\n", rank);

  // One resident server, one session per level — and the wrapper path
  // (run_over_trace = a standalone engine) must agree byte for byte.
  serve::PredictionServer server({.engine = cfg});
  for (const auto level : {trace::Level::Logical, trace::Level::Physical}) {
    const auto report = engine::run_over_trace(world.traces(), level, cfg);
    const auto session = server.open_session();
    session->observe_all(engine::events_from_trace(world.traces(), level));
    if (session->report() != report) {
      std::fprintf(stderr, "serve gate FAILED: session report differs from the engine's at "
                           "the %s level\n",
                   std::string(to_string(level)).c_str());
      return 2;
    }
    print_level_report(level, report, rank, procs, shards);
  }
  std::printf("\n(the logical level is a pure function of the program; the physical level\n"
              " adds the simulated machine's random effects — compare the two blocks)\n");

  if (!export_path.empty()) {
    trace::write_csv_file(export_path, world.traces());
    const auto sweep = bench::gate_shard_sweep(shards);
    const auto gate = ingest::verify_csv_round_trip(world.traces(), cfg, sweep);
    if (!gate.ok) {
      std::fprintf(stderr, "round-trip gate FAILED after export to %s: %s\n", export_path.c_str(),
                   gate.detail.c_str());
      return 2;
    }
    std::printf("\nexported trace to %s (round-trip gate: ok)\n", export_path.c_str());
  }

  if (telem_flags.any()) {
    // Telemetry on/off gate: an identically seeded world with no telemetry
    // attached (no tracing, private registry) must produce the very same
    // run — outcome, final simulated time, every endpoint counter.
    // Telemetry observes; it never steers.
    mpi::World plain(procs, apps::paper_world_config(/*seed=*/42));
    const auto plain_outcome =
        info.run(plain, apps::AppConfig{.problem_class = apps::ProblemClass::A});
    const bool identical =
        plain_outcome.verified == outcome.verified && plain_outcome.metric == outcome.metric &&
        plain_outcome.combined_checksum() == outcome.combined_checksum() &&
        plain.engine().stats().final_time == world.engine().stats().final_time &&
        plain.aggregate_counters() == world.aggregate_counters();
    if (!identical) {
      std::fprintf(stderr, "telemetry gate FAILED: the run changed with telemetry attached\n");
      return 2;
    }
    bench::write_telemetry_or_exit(telem_flags, telem);
    std::printf("\ntelemetry gate: ok (identical run without telemetry)\n");
    if (!telem_flags.metrics_path.empty()) {
      std::printf("telemetry: metrics snapshot -> %s\n", telem_flags.metrics_path.c_str());
    }
    if (!telem_flags.trace_path.empty()) {
      std::printf("telemetry: trace events -> %s\n", telem_flags.trace_path.c_str());
    }
  }
  return 0;
}
