// §2.1 scenario: plan receive buffers from predictions. Runs BT on 16
// simulated processes, takes one process's *physical* sender stream, and
// replays it through the prediction-driven buffer manager, comparing the
// memory footprint and slow-path rate against all-pairs pre-allocation.
//
//   $ ./examples/buffer_planner [procs]    (default 16, must be a square)

#include <cstdio>
#include <cstdlib>

#include "apps/app.hpp"
#include "mpi/world.hpp"
#include "scale/buffer_manager.hpp"
#include "trace/stats.hpp"
#include "trace/stream.hpp"

int main(int argc, char** argv) {
  using namespace mpipred;
  const int procs = argc > 1 ? std::atoi(argv[1]) : 16;
  if (!apps::bt_supports(procs)) {
    std::printf("BT needs a square process count (got %d)\n", procs);
    return 1;
  }

  std::printf("running bt.%d and planning buffers from its physical trace...\n\n", procs);
  mpi::World world(procs, apps::paper_world_config(7));
  (void)apps::run_bt(world, apps::AppConfig{.problem_class = apps::ProblemClass::A});

  const int rank = trace::representative_rank(world.traces(), trace::Level::Physical);
  const auto streams = trace::extract_streams(world.traces(), rank, trace::Level::Physical,
                                              {.kind = trace::OpKind::PointToPoint});
  const auto cmp = scale::compare_buffer_policies(streams.senders, procs);

  const auto print = [](const scale::BufferPolicyReport& r) {
    std::printf("  %-12s hit-rate %5.1f%%  avg buffers %5.1f  peak %3lld  avg memory %8.0f B\n",
                r.policy.c_str(), 100.0 * r.hit_rate(), r.avg_buffers,
                static_cast<long long>(r.peak_buffers), r.avg_memory_bytes());
  };
  std::printf("process %d received %zu point-to-point messages\n", rank, streams.length());
  print(cmp.all_pairs);
  print(cmp.predicted);
  print(cmp.none);

  std::printf("\nmemory saved by prediction: %.1f%% (at %d processes; the gap widens\n"
              "linearly with machine size — that is §2.1's argument)\n",
              100.0 * (1.0 - cmp.predicted.avg_memory_bytes() /
                                 cmp.all_pairs.avg_memory_bytes()),
              procs);
  return 0;
}
