// Online use: predict *while* the application runs. Replays the physical
// traces of ALL Sweep3D processes in global delivery order through the
// prediction engine, which demultiplexes them into one stream per
// receiving process on the fly. Before each arrival the engine's +1
// prediction for that stream is scored, the way an MPI library would
// pre-post a buffer just before the message lands.
//
//   $ ./examples/online_prediction [--predictor <name>]

#include <cstdio>
#include <map>
#include <string>

#include "apps/app.hpp"
#include "engine/engine.hpp"
#include "mpi/world.hpp"

int main(int argc, char** argv) {
  using namespace mpipred;
  const auto arg = engine::predictor_arg_or_exit(argc, argv);
  if (!arg.rest.empty()) {
    std::fprintf(stderr, "unexpected argument '%s'\n", arg.rest.front().c_str());
    return 1;
  }
  const std::string& predictor = arg.name;

  std::printf("running sweep3d.6 (Class A)...\n");
  mpi::World world(6, apps::paper_world_config(99));
  (void)apps::run_sweep3d(world, apps::AppConfig{.problem_class = apps::ProblemClass::A});

  const auto events = engine::events_from_trace(world.traces(), trace::Level::Physical);
  std::printf("replaying %zu physical arrivals across all 6 processes online (%s)...\n\n",
              events.size(), predictor.c_str());

  engine::PredictionEngine eng(engine::EngineConfig{.predictor = predictor});
  std::map<engine::StreamKey, std::int64_t> seen;
  std::int64_t hits = 0;
  std::int64_t total = 0;
  std::int64_t window_hits = 0;
  std::int64_t window_total = 0;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& event = events[i];
    // Score the +1 prediction the receiving process's stream held *before*
    // this message arrived (joint: sender AND size must both be right).
    // Every arrival after a stream's first counts — the paper's metric,
    // where a stream with nothing to say scores a miss.
    const auto key = eng.key_of(event);
    if (seen[key]++ > 0) {
      const auto sender = eng.predict_sender(key);
      const auto size = eng.predict_size(key);
      const bool hit = sender == event.source && size == event.bytes;
      hits += hit ? 1 : 0;
      window_hits += hit ? 1 : 0;
      ++total;
      ++window_total;
    }
    eng.observe(event);

    if (window_total == 256) {
      std::printf("  after %5zu arrivals: rolling (sender,size) hit rate %5.1f%%  (%zu streams)\n",
                  i + 1, 100.0 * static_cast<double>(window_hits) / 256.0, eng.stream_count());
      window_hits = 0;
      window_total = 0;
    }
  }
  const auto report = eng.report();
  std::printf("\noverall joint +1 hit rate: %.1f%% over %lld scored arrivals\n",
              total == 0 ? 0.0 : 100.0 * static_cast<double>(hits) / static_cast<double>(total),
              static_cast<long long>(total));
  std::printf("engine state: %zu streams over %zu shards, %.1f KiB of predictor memory\n",
              report.streams.size(), eng.shard_count(),
              static_cast<double>(report.total_footprint_bytes) / 1024.0);
  return 0;
}
