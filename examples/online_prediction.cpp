// Online use: predict *while* the application runs. Attaches a predictor
// to one process's physical stream of Sweep3D as messages arrive (replayed
// in arrival order), printing a rolling hit rate and showing the §2.2-style
// credits that would have been granted just before each window.
//
//   $ ./examples/online_prediction

#include <cstdio>

#include "apps/app.hpp"
#include "mpi/world.hpp"
#include "scale/window.hpp"
#include "trace/stats.hpp"
#include "trace/stream.hpp"

int main() {
  using namespace mpipred;
  std::printf("running sweep3d.6 (Class A)...\n");
  mpi::World world(6, apps::paper_world_config(99));
  (void)apps::run_sweep3d(world, apps::AppConfig{.problem_class = apps::ProblemClass::A});

  const int rank = trace::representative_rank(world.traces(), trace::Level::Physical);
  const auto streams = trace::extract_streams(world.traces(), rank, trace::Level::Physical);
  std::printf("replaying the %zu-message physical stream of process %d online...\n\n",
              streams.length(), rank);

  scale::JointPredictor predictor;
  std::int64_t hits = 0;
  std::int64_t total = 0;
  std::int64_t window_hits = 0;
  std::int64_t window_total = 0;

  for (std::size_t i = 0; i < streams.length(); ++i) {
    // Score the +1 prediction made before this message arrived.
    if (i > 0) {
      const auto pair = predictor.predict(1);
      const bool hit = pair.sender && pair.bytes && *pair.sender == streams.senders[i] &&
                       *pair.bytes == streams.sizes[i];
      hits += hit ? 1 : 0;
      window_hits += hit ? 1 : 0;
      ++total;
      ++window_total;
    }
    predictor.observe(streams.senders[i], streams.sizes[i]);

    if (window_total == 64) {
      std::printf("  messages %5zu..%5zu: rolling (sender,size) hit rate %5.1f%%", i - 63, i,
                  100.0 * static_cast<double>(window_hits) / static_cast<double>(window_total));
      std::printf("   granted credits now: ");
      for (const auto sender : predictor.predicted_senders()) {
        std::printf("p%lld ", static_cast<long long>(sender));
      }
      std::printf("\n");
      window_hits = 0;
      window_total = 0;
    }
  }
  std::printf("\noverall joint (sender AND size) +1 hit rate: %.1f%% over %lld messages\n",
              100.0 * static_cast<double>(hits) / static_cast<double>(total),
              static_cast<long long>(total));
  return 0;
}
