// Offline workflow: run a kernel once, export the full two-level trace to
// CSV, reload it, and analyze periodicity without re-running the
// simulation — the workflow a tools team would use on recorded traces.
//
//   $ ./examples/trace_export [path]   (default: ./is8_trace.csv)

#include <cstdio>
#include <string>

#include "apps/app.hpp"
#include "core/periodogram.hpp"
#include "mpi/world.hpp"
#include "trace/csv.hpp"
#include "trace/stats.hpp"
#include "trace/stream.hpp"

int main(int argc, char** argv) {
  using namespace mpipred;
  const std::string path = argc > 1 ? argv[1] : "is8_trace.csv";
  constexpr int kProcs = 8;

  std::printf("running is.%d (Class S) and exporting traces to %s ...\n", kProcs, path.c_str());
  {
    mpi::World world(kProcs, apps::paper_world_config(5));
    (void)apps::run_is(world, apps::AppConfig{.problem_class = apps::ProblemClass::S});
    trace::write_csv_file(path, world.traces());
  }

  // A different process (or a later analysis session) reloads the CSV.
  const trace::TraceStore store = trace::read_csv_file(path, kProcs);
  std::printf("reloaded %zu logical + %zu physical records\n\n",
              store.total_records(trace::Level::Logical),
              store.total_records(trace::Level::Physical));

  for (int rank = 0; rank < kProcs; rank += 3) {
    const auto streams = trace::extract_streams(store, rank, trace::Level::Logical);
    const auto pg = core::compute_periodogram(streams.senders, 64);
    const auto fundamental = pg.fundamental_period();
    const auto near = pg.near_period(0.05);
    std::printf("rank %d: %4zu msgs, sender-period exact=%zu near(5%%)=%zu",
                rank, streams.length(), fundamental.value_or(0), near.value_or(0));
    if (near) {
      std::printf("  coverage=%.1f%%", 100.0 * core::period_coverage(streams.senders, *near));
    }
    std::printf("\n");
  }
  std::printf("\n(delete %s when done)\n", path.c_str());
  return 0;
}
