// External traces through the whole stack: open any supported trace file
// (run `trace_export` or `predict_nas --export-trace` to make one, or
// bring a `time_ns,sender,receiver,bytes[,kind]` flat CSV from a real
// capture tool), replay it through the resident prediction service — one
// PredictionServer, one session per trace level, each file parsed in
// pulled batches that overlap the shard drain — and drive the adaptive
// runtime's decision layer over the arrival stream; no simulator
// involved. `--window` slices a capture-time range and `--remap-ranks`
// folds/subsets the rank space before anything else sees the events. Ends
// with the determinism gates: every session's report must be
// byte-identical to the single-tenant engine wrapper's over the same
// stream, and engine reports must match across shard counts {1,2,4},
// batch sizes {64,4096,unbounded}, and a write_csv round trip; exits 2 on
// any mismatch.
//
// `--emit-metrics <file>` writes the final metrics snapshot (serve.*,
// engine.feed.* per tenant, adaptive.policy.*) as JSON;
// `--emit-trace-events <file>` records the adaptive replay's per-event
// decisions as Chrome trace-event instants stamped with event ordinals (an
// ingested file has no simulated clock). Either flag arms a telemetry gate:
// the instrumented adaptive replay must reproduce the un-instrumented
// sweep's summary byte for byte, or the tool exits 2.
//
//   $ ./examples/replay_trace --trace <file> [--predictor <name>] [--shards <n>]
//       [--batch-events <n>] [--window <t0>:<t1>] [--remap-ranks <spec>]
//       [--emit-metrics <file>] [--emit-trace-events <file>]

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "engine/engine.hpp"
#include "ingest/replay.hpp"
#include "ingest/source.hpp"
#include "ingest/streaming.hpp"
#include "ingest/transform.hpp"
#include "ingest/verify.hpp"
#include "serve/server.hpp"

namespace {

/// Tees every pulled batch into a sink, so the adaptive replay below
/// reuses the last level's transformed events instead of re-parsing the
/// whole file a second time.
class TeeStream final : public mpipred::ingest::EventStream {
 public:
  TeeStream(std::unique_ptr<mpipred::ingest::EventStream> inner,
            std::vector<mpipred::ingest::TimedEvent>& sink)
      : inner_(std::move(inner)), sink_(&sink) {}

  std::size_t next_batch(std::size_t max_events,
                         std::vector<mpipred::ingest::TimedEvent>& out) override {
    const std::size_t before = out.size();
    const std::size_t got = inner_->next_batch(max_events, out);
    sink_->insert(sink_->end(), out.begin() + static_cast<std::ptrdiff_t>(before), out.end());
    return got;
  }
  [[nodiscard]] bool time_ordered() const noexcept override { return inner_->time_ordered(); }

 private:
  std::unique_ptr<mpipred::ingest::EventStream> inner_;
  std::vector<mpipred::ingest::TimedEvent>* sink_;
};

/// +1 accuracy as a percentage; 0 when the stream was empty (an empty
/// window or keep set must degrade to a zero report, not an abort).
double pct_at_one(const mpipred::core::AccuracyReport& report) {
  return report.max_horizon() == 0 ? 0.0 : 100.0 * report.at(1).accuracy();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpipred;
  auto arg = engine::predictor_arg_or_exit(argc, argv);
  const std::size_t shards = bench::shards_flag(arg.rest);
  const bench::TraceFlags flags = bench::trace_flags_or_exit(arg.rest);
  const bench::TelemetryFlags telem_flags = bench::telemetry_flags(arg.rest);
  if (!arg.rest.empty()) {
    std::fprintf(stderr, "unexpected argument '%s'\n", arg.rest.front().c_str());
    return 1;
  }
  if (flags.path.empty()) {
    std::fprintf(stderr,
                 "usage: replay_trace --trace <file> [--predictor <name>] [--shards <n>]\n"
                 "                    [--batch-events <n>] [--window <t0>:<t1>]\n"
                 "                    [--remap-ranks <spec>] [--emit-metrics <file>]\n"
                 "                    [--emit-trace-events <file>]\n");
    return 1;
  }

  const auto source = bench::open_trace_or_exit(flags.path);
  const engine::EngineConfig cfg{.predictor = arg.name, .shards = shards};

  // Registry + (ordinal-clocked) trace sink behind the `--emit-*` flags.
  // The serve sessions report into the registry; the wrapper/gate engines
  // stay metrics-free, so every gate doubles as an on/off check.
  telemetry::Telemetry telem;
  if (!telem_flags.trace_path.empty()) {
    telem.enable_tracing();
  }
  engine::EngineConfig server_cfg = cfg;
  if (telem_flags.any()) {
    server_cfg.metrics = &telem.metrics();
  }
  std::printf("%s: format %s, %d ranks, predictor %s, batch %zu events\n", flags.path.c_str(),
              std::string(source->format()).c_str(), source->nranks(), arg.name.c_str(),
              flags.batch_events);

  // The paper's accuracy question, answered from the file alone through
  // the resident service: one PredictionServer, one isolated session per
  // trace level, each fed by the incremental reader in batches (parse of
  // batch N+1 overlapped with the drain of batch N). The last level's
  // transformed arrivals double as the adaptive replay's input below
  // (physical, when the format records it).
  serve::PredictionServer server({.engine = server_cfg});
  std::vector<engine::Event> arrivals;
  try {
    std::vector<ingest::TimedEvent> last_level_events;
    for (const trace::Level level : source->levels()) {
      auto chain = ingest::apply_transforms(ingest::open_event_stream(flags.path, level),
                                            flags.transforms);
      std::unique_ptr<ingest::EventStream> stream = std::move(chain.stream);
      if (level == source->levels().back()) {
        stream = std::make_unique<TeeStream>(std::move(stream), last_level_events);
      }
      const auto session = server.open_session();
      const ingest::StreamedRun run = ingest::run_into(*stream, *session, flags.batch_events);

      // Wrapper-vs-session gate: the single-tenant engine over a second
      // pass of the same stream must reproduce the session's report byte
      // for byte — the serve layer may never change a number.
      auto wrapper_chain = ingest::apply_transforms(ingest::open_event_stream(flags.path, level),
                                                    flags.transforms);
      const ingest::StreamedRun wrapper =
          ingest::StreamingReplay{.engine = cfg, .batch_events = flags.batch_events}.run(
              *wrapper_chain.stream);
      if (wrapper.report != run.report) {
        std::fprintf(stderr, "serve gate FAILED: session report differs from the engine "
                             "wrapper's at the %s level\n",
                     std::string(to_string(level)).c_str());
        return 2;
      }
      std::printf("%s level: %lld messages over %zu streams in %zu batches, +1 accuracy "
                  "senders %.1f%% / sizes %.1f%%\n",
                  std::string(to_string(level)).c_str(), static_cast<long long>(run.events),
                  run.report.streams.size(), run.batches,
                  pct_at_one(run.report.aggregate_senders),
                  pct_at_one(run.report.aggregate_sizes));
      if (chain.window != nullptr) {
        std::printf("  %s\n", chain.window->summary().c_str());
      }
      if (chain.remap != nullptr) {
        std::printf("  remap %s: %s\n", chain.remap->config().to_string().c_str(),
                    chain.remap->report().summary().c_str());
      }
    }
    arrivals = ingest::strip_times(last_level_events);
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  // The §2 runtime question — what would the adaptive library have done?
  // — swept across shard counts (the first determinism gate).
  const auto sweep = bench::gate_shard_sweep(shards);
  adaptive::RuntimeConfig rt;
  rt.service.engine.predictor = arg.name;
  const auto swept = ingest::replay_adaptive_swept(arrivals, rt, sweep);
  std::printf("adaptive replay: %s\n", swept.replay.summary().c_str());
  if (!swept.deterministic) {
    std::fprintf(stderr, "adaptive replay differs at %s\n", swept.mismatch.c_str());
    return 2;
  }
  if (telem_flags.any()) {
    // Telemetry on/off gate: the instrumented replay (metrics registry
    // wired in, decision instants recorded) must reproduce the
    // un-instrumented sweep's summary byte for byte.
    const ingest::AdaptiveReplay instrumented = ingest::replay_adaptive(arrivals, rt, &telem);
    if (instrumented.summary() != swept.replay.summary()) {
      std::fprintf(stderr, "telemetry gate FAILED: instrumented replay differs\n  ref : %s\n"
                           "  got : %s\n",
                   swept.replay.summary().c_str(), instrumented.summary().c_str());
      return 2;
    }
  }
  const auto streamed =
      ingest::verify_streamed_source(flags.path, *source, flags.transforms, cfg, sweep);
  if (!streamed.ok) {
    std::fprintf(stderr, "streamed-ingest gate FAILED: %s\n", streamed.detail.c_str());
    return 2;
  }
  if (const trace::TraceStore* store = source->store()) {
    const auto gate = ingest::verify_csv_round_trip(*store, cfg, sweep);
    if (!gate.ok) {
      std::fprintf(stderr, "round-trip gate FAILED: %s\n", gate.detail.c_str());
      return 2;
    }
  }
  std::printf("gates: session == engine wrapper per level; adaptive replay and engine reports "
              "byte-identical across shards {1,2,4}, batch sizes {64,4096,unbounded}, and a "
              "write_csv round trip\n");
  if (telem_flags.any()) {
    bench::write_telemetry_or_exit(telem_flags, telem);
    std::printf("telemetry gate: ok (instrumented replay identical)");
    if (!telem_flags.metrics_path.empty()) {
      std::printf("; metrics -> %s", telem_flags.metrics_path.c_str());
    }
    if (!telem_flags.trace_path.empty()) {
      std::printf("; trace events -> %s", telem_flags.trace_path.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
