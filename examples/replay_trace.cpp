// External traces through the whole stack: open any supported trace file
// (run `trace_export` or `predict_nas --export-trace` to make one, or
// bring a `time_ns,sender,receiver,bytes[,kind]` flat CSV from a real
// capture tool), replay it through the registry/engine path per level, and
// drive the adaptive runtime's decision layer over the arrival stream —
// no simulator involved. Ends with the determinism gates: engine reports
// must be byte-identical across shard counts {1,2,4} and across a
// write_csv round trip; exits 2 on any mismatch.
//
//   $ ./examples/replay_trace --trace <file> [--predictor <name>] [--shards <n>]

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "engine/engine.hpp"
#include "ingest/replay.hpp"
#include "ingest/source.hpp"
#include "ingest/verify.hpp"

int main(int argc, char** argv) {
  using namespace mpipred;
  auto arg = engine::predictor_arg_or_exit(argc, argv);
  const std::size_t shards = bench::shards_flag(arg.rest);
  const std::string path = bench::string_flag(arg.rest, "--trace");
  if (!arg.rest.empty()) {
    std::fprintf(stderr, "unexpected argument '%s'\n", arg.rest.front().c_str());
    return 1;
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: replay_trace --trace <file> [--predictor <name>] "
                         "[--shards <n>]\n");
    return 1;
  }

  std::unique_ptr<ingest::TraceSource> source;
  try {
    source = ingest::open_trace(path);
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  const engine::EngineConfig cfg{.predictor = arg.name, .shards = shards};
  std::printf("%s: format %s, %d ranks, predictor %s\n", path.c_str(),
              std::string(source->format()).c_str(), source->nranks(), arg.name.c_str());

  // The paper's accuracy question, answered from the file alone. The last
  // level's event stream doubles as the arrival sequence below (physical,
  // when the format records it).
  std::vector<engine::Event> arrivals;
  for (const trace::Level level : source->levels()) {
    arrivals = source->events(level);
    engine::PredictionEngine eng(cfg);
    eng.observe_all(arrivals);
    const auto report = eng.report();
    std::printf("%s level: %lld messages over %zu streams, +1 accuracy senders %.1f%% / "
                "sizes %.1f%%\n",
                std::string(to_string(level)).c_str(), static_cast<long long>(report.events),
                report.streams.size(), 100.0 * report.aggregate_senders.at(1).accuracy(),
                100.0 * report.aggregate_sizes.at(1).accuracy());
  }

  // The §2 runtime question — what would the adaptive library have done?
  // — swept across shard counts (the first determinism gate).
  const auto sweep = bench::gate_shard_sweep(shards);
  adaptive::RuntimeConfig rt;
  rt.service.engine.predictor = arg.name;
  const auto swept = ingest::replay_adaptive_swept(arrivals, rt, sweep);
  std::printf("adaptive replay: %s\n", swept.replay.summary().c_str());
  if (!swept.deterministic) {
    std::fprintf(stderr, "adaptive replay differs at %s\n", swept.mismatch.c_str());
    return 2;
  }
  if (const trace::TraceStore* store = source->store()) {
    const auto gate = ingest::verify_csv_round_trip(*store, cfg, sweep);
    if (!gate.ok) {
      std::fprintf(stderr, "round-trip gate FAILED: %s\n", gate.detail.c_str());
      return 2;
    }
  }
  std::printf("gates: adaptive replay and engine reports byte-identical across shards "
              "{1,2,4} and a write_csv round trip\n");
  return 0;
}
