// Quickstart: a predictor on its own. Feed a message stream (here: a
// synthetic sender pattern like the ones MPI processes see), watch the DPD
// find the period, and ask for the next five values. Any registered
// predictor family can be swapped in by name.
//
//   $ ./examples/quickstart [predictor]      (default: dpd)

#include <cstdio>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "core/predictor.hpp"
#include "engine/registry.hpp"

int main(int argc, char** argv) {
  using namespace mpipred;
  const std::string name = argc > 1 ? argv[1] : "dpd";

  // A process that receives from peers 3, 1, 4, 1, 5 over and over — the
  // kind of iterative pattern Figure 1 of the paper shows for NAS BT.
  const std::vector<std::int64_t> pattern = {3, 1, 4, 1, 5};

  std::unique_ptr<core::Predictor> predictor;  // defaults: horizon 5
  try {
    predictor = engine::make_predictor(name);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  std::printf("predictor: %s\n", std::string(predictor->name()).c_str());

  std::printf("observing the stream...\n");
  // Periodicity-based families expose the detected period as a trait;
  // show the moment it locks on (families without the trait stay quiet).
  bool announced = false;
  for (int i = 0; i < 50; ++i) {
    predictor->observe(pattern[static_cast<std::size_t>(i) % pattern.size()]);
    if (!announced) {
      if (const auto period = core::trait(*predictor, "period")) {
        std::printf("  after %2d samples: period %lld detected\n", i + 1,
                    static_cast<long long>(*period));
        announced = true;
      }
    }
  }

  std::printf("\npredictions for the next five messages:\n");
  for (std::size_t h = 1; h <= 5; ++h) {
    const auto value = predictor->predict(h);
    const std::int64_t actual = pattern[(50 + h - 1) % pattern.size()];
    std::printf("  +%zu: predicted %2lld   (actual will be %2lld)  %s\n", h,
                static_cast<long long>(value.value_or(-1)), static_cast<long long>(actual),
                value == actual ? "hit" : "miss");
  }
  return 0;
}
