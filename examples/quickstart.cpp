// Quickstart: the predictor on its own. Feed a message stream (here: a
// synthetic sender pattern like the ones MPI processes see), watch the DPD
// find the period, and ask for the next five values.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <vector>

#include "core/stream_predictor.hpp"

int main() {
  using mpipred::core::StreamPredictor;

  // A process that receives from peers 3, 1, 4, 1, 5 over and over — the
  // kind of iterative pattern Figure 1 of the paper shows for NAS BT.
  const std::vector<std::int64_t> pattern = {3, 1, 4, 1, 5};

  StreamPredictor predictor;  // defaults: window 512, horizon 5

  std::printf("observing the stream...\n");
  for (int i = 0; i < 30; ++i) {
    const std::int64_t sample = pattern[static_cast<std::size_t>(i) % pattern.size()];
    predictor.observe(sample);
    if (const auto period = predictor.period()) {
      std::printf("  after %2d samples: period %zu detected\n", i + 1, *period);
      break;
    }
  }

  // Feed the rest of a few iterations, then predict.
  for (int i = 30; i < 50; ++i) {
    predictor.observe(pattern[static_cast<std::size_t>(i) % pattern.size()]);
  }

  std::printf("\nlast observed value: %lld\n",
              static_cast<long long>(predictor.detector().value_at_lag(0)));
  std::printf("predictions for the next five messages:\n");
  for (std::size_t h = 1; h <= 5; ++h) {
    const auto value = predictor.predict(h);
    const std::int64_t actual = pattern[(50 + h - 1) % pattern.size()];
    std::printf("  +%zu: predicted %2lld   (actual will be %2lld)  %s\n", h,
                static_cast<long long>(value.value_or(-1)), static_cast<long long>(actual),
                value == actual ? "hit" : "miss");
  }
  return 0;
}
